"""A4 -- Third use case: KML selecting I/O schedulers (§6 future work).

"We plan to apply KML to other storage subsystems: e.g., I/O
schedulers."  This bench runs the block-layer request simulator: sweep
noop/deadline/elevator across stream kinds on flash and disk device
profiles, train the KML classifier on block-layer features, and verify
it selects the winning scheduler per stream.

Expected shapes: the scheduler is immaterial on flash (no positional
cost); on disk the elevator multiplies random/mixed throughput and the
classifier picks it; sequential streams are scheduler-neutral.
"""

import numpy as np
import pytest

from common import write_result

from repro.iosched import (
    SCHEDULER_NAMES,
    SchedulerSelector,
    best_scheduler,
    disk_device,
    flash_device,
    make_stream,
    sweep_schedulers,
)


@pytest.mark.benchmark(group="iosched")
def test_scheduler_selection(benchmark):
    outcome = {}

    def run_all():
        outcome["flash"] = sweep_schedulers(flash_device(), n_requests=3000)
        outcome["disk"] = sweep_schedulers(disk_device(), n_requests=3000)
        selector = SchedulerSelector(rng=np.random.default_rng(0))
        selector.fit_from_sweep(disk_device(), windows_per_kind=25, window=100)
        outcome["selector"] = selector
        outcome["accuracy"] = selector.accuracy(windows_per_kind=8, window=100)
        return outcome

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["I/O scheduler sweep (throughput in requests/sim-sec)"]
    for device_name in ("flash", "disk"):
        lines.append(f"\n--- {device_name} ---")
        header = f"{'stream':18s}" + "".join(
            f"{n:>12s}" for n in SCHEDULER_NAMES
        ) + "   best"
        lines.append(header)
        for kind, per in outcome[device_name].items():
            row = f"{kind:18s}" + "".join(
                f"{per[n].throughput:>12,.0f}" for n in SCHEDULER_NAMES
            )
            lines.append(row + f"   {best_scheduler(per)}")
    selector = outcome["selector"]
    lines.append(
        f"\nclassifier accuracy on held-out windows: {outcome['accuracy']*100:.0f}%"
    )
    lines.append(f"stream -> scheduler map: {selector.best_by_kind}")
    write_result("iosched.txt", "\n".join(lines))

    disk = outcome["disk"]
    for kind in ("random_read", "mixed"):
        tput = {n: disk[kind][n].throughput for n in SCHEDULER_NAMES}
        assert best_scheduler(disk[kind]) == "elevator"
        assert tput["elevator"] > 2 * tput["noop"]
    flash = outcome["flash"]
    for kind, per in flash.items():
        tputs = [r.throughput for r in per.values()]
        assert max(tputs) < 1.05 * min(tputs)  # immaterial on flash
    assert outcome["accuracy"] > 0.85
    # The classifier's end-to-end selection picks the winner.
    rng = np.random.default_rng(5)
    assert selector.select(make_stream("random_read", 100, rng)) == "elevator"
