"""E6 -- The decision-tree readahead model (paper section 4).

"The readahead decision-tree model improved performance for SSD 55%
and NVMe 26% on average" -- smaller gains than the neural network's
82.5%/37.3%, which is why the paper presents the NN as superior.

This bench trains the CART variant on the same data, runs the same
vanilla-vs-tuned comparison on the random-dominated workloads, and
checks the ordering: tree gains positive but at or below the NN's.
"""

import numpy as np
import pytest

from common import run_pair, write_result

from repro.readahead import ReadaheadTreeModel

WORKLOADS = ("readrandom", "readrandomwriterandom", "updaterandom", "mixgraph")


class _TreeDeployable:
    """Adapter giving the tree the deployable-network interface."""

    def __init__(self, tree: ReadaheadTreeModel):
        self.tree = tree

    def predict_classes(self, x, dtype=None):
        return self.tree.predict(np.asarray(x))


@pytest.mark.benchmark(group="decision-tree")
def test_decision_tree_variant(benchmark, training_dataset, deployable,
                               tuning_table):
    results = {}

    def run_all():
        tree = ReadaheadTreeModel(max_depth=3).fit(
            training_dataset.x, training_dataset.y
        )
        wrapped = _TreeDeployable(tree)
        for device in ("nvme", "ssd"):
            for workload in WORKLOADS:
                results[("tree", workload, device)] = run_pair(
                    device, workload, wrapped, tuning_table, sim_seconds=1.5
                )
                results[("nn", workload, device)] = run_pair(
                    device, workload, deployable, tuning_table, sim_seconds=1.5
                )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "Decision-tree vs neural-network readahead models",
        f"{'workload':24s} {'device':6s} {'tree':>7s} {'NN':>7s}",
    ]
    means = {"tree": {"nvme": [], "ssd": []}, "nn": {"nvme": [], "ssd": []}}
    for workload in WORKLOADS:
        for device in ("nvme", "ssd"):
            tree_r = results[("tree", workload, device)].ratio
            nn_r = results[("nn", workload, device)].ratio
            means["tree"][device].append(tree_r)
            means["nn"][device].append(nn_r)
            lines.append(
                f"{workload:24s} {device:6s} {tree_r:>6.2f}x {nn_r:>6.2f}x"
            )
    for device in ("nvme", "ssd"):
        tree_mean = np.mean(means["tree"][device])
        nn_mean = np.mean(means["nn"][device])
        paper_tree = {"nvme": 1.26, "ssd": 1.55}[device]
        lines.append(
            f"average {device}: tree {tree_mean:.2f}x "
            f"(paper {paper_tree:.2f}x), NN {nn_mean:.2f}x"
        )
    write_result("decision_tree.txt", "\n".join(lines))

    # Shape: the tree helps on both devices...
    for device in ("nvme", "ssd"):
        assert np.mean(means["tree"][device]) > 1.05
    # ...but does not beat the NN by a meaningful margin.
    assert np.mean(means["nn"]["ssd"]) >= np.mean(means["tree"]["ssd"]) - 0.15
