"""Session fixtures for the benchmark harness.

The trained readahead model, its dataset, and the tuning table are
expensive to produce, so they are built once per session and cached on
disk under ``benchmarks/_artifacts/`` -- delete that directory to force
regeneration.
"""

import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.dirname(__file__))

from common import ARTIFACT_DIR, ensure_dirs  # noqa: E402

from repro.kml import load_model, save_model  # noqa: E402
from repro.readahead import (  # noqa: E402
    CollectionConfig,
    Dataset,
    ReadaheadClassifier,
    TuningTable,
    collect_training_data,
    sweep_best_readahead,
)

_DATASET_PATH = os.path.join(ARTIFACT_DIR, "training_data.npz")
_MODEL_PATH = os.path.join(ARTIFACT_DIR, "readahead_nn.kml")
_TUNING_PATH = os.path.join(ARTIFACT_DIR, "tuning.json")

#: Readahead values for the quick tuning sweep backing the agent.
QUICK_SWEEP_RA = (8, 32, 128, 512)


@pytest.fixture(scope="session")
def training_dataset() -> Dataset:
    """NVMe training data for the four paper workloads (cached)."""
    ensure_dirs()
    if os.path.exists(_DATASET_PATH):
        blob = np.load(_DATASET_PATH, allow_pickle=False)
        return Dataset(blob["x"], blob["y"])
    config = CollectionConfig(
        num_keys=60_000,
        value_size=400,
        cache_pages=512,
        ra_values=QUICK_SWEEP_RA,
        windows_per_value=3,
        ra_passes=2,
    )
    dataset = collect_training_data(config)
    np.savez(_DATASET_PATH, x=dataset.x, y=dataset.y)
    return dataset


@pytest.fixture(scope="session")
def classifier(training_dataset) -> ReadaheadClassifier:
    clf = ReadaheadClassifier(rng=np.random.default_rng(0))
    clf.fit(training_dataset.x, training_dataset.y)
    return clf


@pytest.fixture(scope="session")
def deployable(classifier):
    """The deployed network, round-tripped through the KML file format
    exactly as the paper deploys user-space-trained models."""
    ensure_dirs()
    if not os.path.exists(_MODEL_PATH):
        save_model(classifier.to_deployable(), _MODEL_PATH)
    return load_model(_MODEL_PATH)


@pytest.fixture(scope="session")
def tuning_table() -> TuningTable:
    """Per-device best-readahead mapping from a quick sweep (cached)."""
    ensure_dirs()
    if os.path.exists(_TUNING_PATH):
        return TuningTable.load(_TUNING_PATH)
    table = TuningTable()
    for device in ("nvme", "ssd"):
        partial, _ = sweep_best_readahead(
            device,
            ("readseq", "readrandom", "readreverse", "readrandomwriterandom"),
            ra_values=QUICK_SWEEP_RA,
            num_keys=60_000,
            value_size=400,
            cache_pages=512,
            ops_per_point=3000,
        )
        for workload, ra in partial.table[device].items():
            table.set(device, workload, ra)
    table.save(_TUNING_PATH)
    return table
