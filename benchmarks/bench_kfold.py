"""E2 -- Model validation: 10-fold cross-validation accuracy.

The paper: "We measured the performance of our neural network using
k-fold cross-validation with k = 10, and found that our model reached
an average accuracy of 95.5%."  Same protocol, our collected data.
Expected shape: high (>85%) mean accuracy, and the NN outperforming
the decision tree (the paper keeps the NN for being superior).
"""

import numpy as np
import pytest

from common import write_result

from repro.kml.metrics import k_fold_cross_validate
from repro.readahead import ReadaheadClassifier, ReadaheadTreeModel
from repro.stats.correlation import feature_label_correlations


@pytest.mark.benchmark(group="kfold")
def test_kfold_accuracy(benchmark, training_dataset):
    outcome = {}

    def run_cv():
        outcome["nn"] = k_fold_cross_validate(
            lambda: ReadaheadClassifier(rng=np.random.default_rng(1)),
            training_dataset.x,
            training_dataset.y,
            k=10,
            rng=np.random.default_rng(2),
        )
        outcome["tree"] = k_fold_cross_validate(
            lambda: ReadaheadTreeModel(),
            training_dataset.x,
            training_dataset.y,
            k=10,
            rng=np.random.default_rng(2),
        )
        return outcome

    benchmark.pedantic(run_cv, rounds=1, iterations=1)

    correlations = feature_label_correlations(
        training_dataset.x, training_dataset.y
    )
    names = ["count", "offset_cma", "offset_cmstd", "mean_abs_delta", "ra"]
    lines = [
        "Readahead model validation (10-fold cross-validation)",
        f"dataset: {len(training_dataset)} windows, "
        f"class counts {training_dataset.class_counts().tolist()}",
        f"neural network: {outcome['nn']}   (paper: 95.5%)",
        f"decision tree : {outcome['tree']}",
        "feature |Pearson r| vs label: "
        + ", ".join(f"{n}={c:.2f}" for n, c in zip(names, correlations)),
    ]
    write_result("kfold.txt", "\n".join(lines))

    assert outcome["nn"].mean_accuracy > 0.85
    # The paper reports the NN as the superior model.
    assert outcome["nn"].mean_accuracy >= outcome["tree"].mean_accuracy - 0.02
