"""E1 -- The empirical study behind the design (paper section 4,
"Studying the problem"): 20 readahead sizes from 8 to 1024, multiple
workloads, two devices; build the workload -> best-readahead map.

Expected shape: no single readahead value wins everywhere; random
workloads peak at small values, sequential scans at mid/large values,
and the curves are non-linear with long tails.
"""

import numpy as np
import pytest

from common import write_result

from repro.readahead import PAPER_RA_VALUES, sweep_best_readahead

WORKLOADS = ("readseq", "readrandom", "readreverse", "readrandomwriterandom")


@pytest.mark.benchmark(group="sweep")
def test_readahead_sweep_best_value_map(benchmark):
    sweeps = {}

    def run_all():
        for device in ("nvme", "ssd"):
            _, result = sweep_best_readahead(
                device,
                WORKLOADS,
                ra_values=PAPER_RA_VALUES,
                num_keys=60_000,
                value_size=400,
                cache_pages=512,
                ops_per_point=2000,
            )
            sweeps[device] = result
        return sweeps

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "Readahead sweep: throughput (ops/sim-sec) per readahead value",
        f"(20 values from {PAPER_RA_VALUES[0]} to {PAPER_RA_VALUES[-1]}, "
        "as in the paper)",
    ]
    best = {}
    for device, result in sweeps.items():
        lines.append(f"\n--- {device} ---")
        header = f"{'workload':24s}" + "".join(
            f"{ra:>8d}" for ra in PAPER_RA_VALUES
        )
        lines.append(header)
        for workload in WORKLOADS:
            curve = result.throughput[workload]
            row = f"{workload:24s}" + "".join(
                f"{curve[ra]:>8,.0f}" for ra in PAPER_RA_VALUES
            )
            lines.append(row)
            best[(device, workload)] = result.best_ra(workload)
        lines.append(
            "best: "
            + ", ".join(
                f"{w}={best[(device, w)]}" for w in WORKLOADS
            )
        )
    write_result("sweep.txt", "\n".join(lines))

    for device, result in sweeps.items():
        # Shape 1: the best value is workload-dependent (not constant).
        values = {best[(device, w)] for w in WORKLOADS}
        assert len(values) > 1, f"{device}: one ra won everywhere"
        # Shape 2: random reads prefer small windows...
        assert best[(device, "readrandom")] <= 32
        # ...and degrade badly at the top of the range.
        curve = result.throughput["readrandom"]
        assert curve[best[(device, "readrandom")]] > 2.5 * curve[1024]
        # Shape 3: sequential scans do NOT want the minimum on SSD.
        seq_curve = sweeps["ssd"].throughput["readseq"]
        assert max(seq_curve, key=seq_curve.get) > 8
